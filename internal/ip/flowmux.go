package ip

import (
	"fmt"
	"time"

	"unet/internal/sim"
)

// FlowMux implements the interoperability plan of §7.1: instead of one
// U-Net channel per application pair, a single dedicated IP-over-ATM
// channel carries all IP traffic, and "an additional level of
// demultiplexing ... based on the [flow-id, source address] tag" dispatches
// arrivals to per-flow conduits. "Packets for which the tag does not
// resolve to a local U-Net destination will be transferred to the kernel
// communication endpoint for generalized processing" — the fallback
// handler here.
//
// The flow identifier travels in the 24-bit field the model's IP header
// reserves for it (the IPv6 flow-label analogue, §7.1 targets IPv6).
type FlowMux struct {
	base     Conduit
	flows    map[flowKey]*FlowConduit
	fallback func(p *sim.Proc, pkt []byte)
	stats    FlowMuxStats
}

// FlowMuxStats counts demultiplexer events.
type FlowMuxStats struct {
	Dispatched uint64
	Fallback   uint64
}

type flowKey struct {
	flow uint32
	src  uint32
}

// flowLabelOffset places the 24-bit label in the header's
// identification/fragment bytes (unused by the model).
const flowLabelOffset = 4

// SetFlowLabel stamps a 24-bit flow label into an assembled IP packet.
func SetFlowLabel(pkt []byte, flow uint32) {
	if len(pkt) < HeaderSize {
		return
	}
	pkt[flowLabelOffset] = byte(flow >> 16)
	pkt[flowLabelOffset+1] = byte(flow >> 8)
	pkt[flowLabelOffset+2] = byte(flow)
}

// FlowLabel reads a packet's 24-bit flow label.
func FlowLabel(pkt []byte) uint32 {
	if len(pkt) < HeaderSize {
		return 0
	}
	return uint32(pkt[flowLabelOffset])<<16 |
		uint32(pkt[flowLabelOffset+1])<<8 |
		uint32(pkt[flowLabelOffset+2])
}

// NewFlowMux wraps the shared IP channel.
func NewFlowMux(base Conduit) *FlowMux {
	return &FlowMux{base: base, flows: make(map[flowKey]*FlowConduit)}
}

// Stats returns a snapshot of the demultiplexer counters.
func (m *FlowMux) Stats() FlowMuxStats { return m.stats }

// SetFallback installs the kernel-endpoint handler for unresolved tags.
func (m *FlowMux) SetFallback(fn func(p *sim.Proc, pkt []byte)) { m.fallback = fn }

// Open registers flow id `flow` from the peer and returns its conduit.
func (m *FlowMux) Open(flow uint32) (*FlowConduit, error) {
	key := flowKey{flow: flow, src: m.base.RemoteAddr()}
	if _, busy := m.flows[key]; busy {
		return nil, fmt.Errorf("ip: flow %d already open", flow)
	}
	fc := &FlowConduit{mux: m, flow: flow}
	m.flows[key] = fc
	return fc, nil
}

// Close removes a flow registration.
func (m *FlowMux) Close(fc *FlowConduit) {
	delete(m.flows, flowKey{flow: fc.flow, src: m.base.RemoteAddr()})
}

// pump moves one packet from the base channel to its flow (or the
// fallback). Returns false on timeout.
func (m *FlowMux) pump(p *sim.Proc, timeout time.Duration) bool {
	pkt, ok := m.base.Recv(p, timeout)
	if !ok {
		return false
	}
	m.dispatch(p, pkt)
	return true
}

func (m *FlowMux) tryPump(p *sim.Proc) bool {
	pkt, ok := m.base.TryRecv(p)
	if !ok {
		return false
	}
	m.dispatch(p, pkt)
	return true
}

func (m *FlowMux) dispatch(p *sim.Proc, pkt []byte) {
	hdr, err := ParseHeader(pkt)
	if err != nil {
		return
	}
	key := flowKey{flow: FlowLabel(pkt), src: hdr.Src}
	if fc, ok := m.flows[key]; ok {
		m.stats.Dispatched++
		fc.rq = append(fc.rq, pkt)
		return
	}
	m.stats.Fallback++
	if m.fallback != nil {
		m.fallback(p, pkt)
	}
}

// FlowConduit is one flow's view of the shared channel. It implements
// Conduit, so UDP stacks and TCP connections run over it unchanged —
// several of them can now share a single pair of U-Net endpoints.
type FlowConduit struct {
	mux  *FlowMux
	flow uint32
	rq   [][]byte
}

// Flow returns the conduit's flow identifier.
func (fc *FlowConduit) Flow() uint32 { return fc.flow }

// LocalAddr returns the shared channel's local address.
func (fc *FlowConduit) LocalAddr() uint32 { return fc.mux.base.LocalAddr() }

// RemoteAddr returns the shared channel's peer address.
func (fc *FlowConduit) RemoteAddr() uint32 { return fc.mux.base.RemoteAddr() }

// MTU returns the shared channel's MTU.
func (fc *FlowConduit) MTU() int { return fc.mux.base.MTU() }

// Send stamps the flow label and transmits on the shared channel.
func (fc *FlowConduit) Send(p *sim.Proc, pkt []byte) error {
	SetFlowLabel(pkt, fc.flow)
	return fc.mux.base.Send(p, pkt)
}

// Recv blocks up to timeout for the next packet on this flow, pumping the
// shared channel (arrivals for other flows are queued on their conduits).
func (fc *FlowConduit) Recv(p *sim.Proc, timeout time.Duration) ([]byte, bool) {
	var deadline time.Duration = -1
	if timeout >= 0 {
		deadline = p.Now() + timeout
	}
	for len(fc.rq) == 0 {
		remain := time.Duration(-1)
		if deadline >= 0 {
			remain = deadline - p.Now()
			if remain <= 0 {
				return nil, false
			}
		}
		if !fc.mux.pump(p, remain) {
			return nil, false
		}
	}
	pkt := fc.rq[0]
	fc.rq = fc.rq[1:]
	return pkt, true
}

// TryRecv polls this flow without blocking (draining whatever is already
// queued on the shared channel first).
func (fc *FlowConduit) TryRecv(p *sim.Proc) ([]byte, bool) {
	for len(fc.rq) == 0 {
		if !fc.mux.tryPump(p) {
			return nil, false
		}
	}
	pkt := fc.rq[0]
	fc.rq = fc.rq[1:]
	return pkt, true
}

var _ Conduit = (*FlowConduit)(nil)
