package splitc

import (
	"encoding/binary"
	"fmt"
	"math"
	"time"

	"unet/internal/sim"
)

// Runtime message kinds, carried in the top byte of the transport arg.
const (
	kindUser    = iota + 1 // application small message / RPC
	kindBarrier            // dissemination barrier round
	kindReduce             // butterfly all-reduce round
)

func packArg(kind int, low uint32) uint32 {
	return uint32(kind)<<24 | (low & 0xFFFFFF)
}

func unpackArg(arg uint32) (int, uint32) {
	return int(arg >> 24), arg & 0xFFFFFF
}

// UserHandler processes application small messages (one-way Sends). For
// user RPCs the returned pair is the reply.
type UserHandler func(p *sim.Proc, src int, arg uint32, data []byte) (uint32, []byte)

// Node is one Split-C processor: a thread of control with access to the
// global operations. All methods must be called from the node's own
// process.
type Node struct {
	t Transport

	userSmall UserHandler
	userBulk  BulkHandler

	// barrier/reduce state, keyed by (round, epoch mod small space)
	barSeen map[uint32]int
	redVals map[uint32][]int64
	barEp   uint32
	redEp   uint32

	commTime    time.Duration
	computeTime time.Duration
}

// NewNode wraps a transport in the Split-C runtime.
func NewNode(t Transport) *Node {
	nd := &Node{
		t:       t,
		barSeen: make(map[uint32]int),
		redVals: make(map[uint32][]int64),
	}
	t.SetRequestHandler(nd.onRequest)
	t.SetBulkHandler(nd.onBulk)
	return nd
}

// Self returns the node index; N the machine width.
func (nd *Node) Self() int { return nd.t.Self() }

// N returns the number of processors.
func (nd *Node) N() int { return nd.t.Size() }

// Transport exposes the underlying substrate.
func (nd *Node) Transport() Transport { return nd.t }

// OnSmall installs the handler for application small messages.
func (nd *Node) OnSmall(fn UserHandler) { nd.userSmall = fn }

// OnBulk installs the handler for application bulk transfers.
func (nd *Node) OnBulk(fn BulkHandler) { nd.userBulk = fn }

// CommTime and ComputeTime report the accumulated phase split, the
// instrumentation behind Figure 5's computation/communication breakdown.
func (nd *Node) CommTime() time.Duration    { return nd.commTime }
func (nd *Node) ComputeTime() time.Duration { return nd.computeTime }

// comm runs fn and accounts its duration as communication time.
func (nd *Node) comm(p *sim.Proc, fn func()) {
	t0 := p.Now()
	fn()
	nd.commTime += p.Now() - t0
}

// Compute charges d of baseline (60 MHz SuperSPARC) CPU work, scaled by
// the machine's relative processor speed — how Figure 5 exposes the CM-5's
// CPU disadvantage.
func (nd *Node) Compute(p *sim.Proc, d time.Duration) {
	scaled := time.Duration(float64(d) / nd.t.CPU())
	t0 := p.Now()
	p.Sleep(scaled)
	nd.computeTime += p.Now() - t0
}

// ComputeOps charges n operations of baseline cost per.
func (nd *Node) ComputeOps(p *sim.Proc, n int, per time.Duration) {
	nd.Compute(p, time.Duration(n)*per)
}

// Baseline per-operation costs on the 60 MHz SuperSPARC (CPU() == 1).
const (
	// FlopCost is one double-precision multiply-add in a tuned loop.
	FlopCost = 35 * time.Nanosecond
	// IntOpCost is one integer compare/swap/index step.
	IntOpCost = 18 * time.Nanosecond
)

// Send delivers a one-way application small message to dst.
func (nd *Node) Send(p *sim.Proc, dst int, arg uint32, data []byte) {
	nd.comm(p, func() { nd.t.Send(p, dst, packArg(kindUser, arg), data) })
}

// RPC performs a blocking application request/reply — the compiled form of
// dereferencing a global pointer (§6).
func (nd *Node) RPC(p *sim.Proc, dst int, arg uint32, data []byte) (rarg uint32, rdata []byte) {
	nd.comm(p, func() { rarg, rdata = nd.t.RPC(p, dst, packArg(kindUser, arg), data) })
	return rarg, rdata
}

// Bulk sends a one-way block transfer to dst's bulk handler.
func (nd *Node) Bulk(p *sim.Proc, dst int, data []byte) {
	nd.comm(p, func() { nd.t.Bulk(p, dst, data) })
}

// Poll dispatches pending arrivals.
func (nd *Node) Poll(p *sim.Proc) {
	nd.comm(p, func() { nd.t.Poll(p) })
}

// PollWait blocks up to d for arrivals.
func (nd *Node) PollWait(p *sim.Proc, d time.Duration) {
	nd.comm(p, func() { nd.t.PollWait(p, d) })
}

// Flush waits until all outgoing traffic is delivered.
func (nd *Node) Flush(p *sim.Proc) {
	nd.comm(p, func() { nd.t.Flush(p) })
}

// onRequest is the runtime's transport dispatch.
func (nd *Node) onRequest(p *sim.Proc, src int, arg uint32, data []byte) (uint32, []byte) {
	kind, low := unpackArg(arg)
	switch kind {
	case kindUser:
		if nd.userSmall == nil {
			return 0, nil
		}
		return nd.userSmall(p, src, low, data)
	case kindBarrier:
		nd.barSeen[low]++
	case kindReduce:
		v := int64(binary.BigEndian.Uint64(data))
		nd.redVals[low] = append(nd.redVals[low], v)
	}
	return 0, nil
}

func (nd *Node) onBulk(p *sim.Proc, src int, data []byte) {
	if nd.userBulk != nil {
		nd.userBulk(p, src, data)
	}
}

// Barrier synchronizes all processors with a dissemination barrier:
// ceil(log2 N) rounds of one small message each. Note that a barrier does
// NOT flush data channels: ordering is only guaranteed pairwise, so a
// message from A to C sent before A's barrier may arrive at C after C
// exits the barrier. Applications that need all-received semantics send
// per-pair end-of-data markers (see the apps package) or Flush.
func (nd *Node) Barrier(p *sim.Proc) {
	nd.comm(p, func() { nd.barrier(p) })
}

func (nd *Node) barrier(p *sim.Proc) {
	n := nd.N()
	if n == 1 {
		return
	}
	nd.barEp++
	ep := nd.barEp % 1024
	self := nd.Self()
	for round, dist := 0, 1; dist < n; round, dist = round+1, dist*2 {
		key := ep<<8 | uint32(round)
		dst := (self + dist) % n
		nd.t.Send(p, dst, packArg(kindBarrier, key), nil)
		for nd.barSeen[key] == 0 {
			nd.t.PollWait(p, time.Millisecond)
		}
		nd.barSeen[key]--
		if nd.barSeen[key] == 0 {
			delete(nd.barSeen, key)
		}
	}
}

// ReduceOp names an all-reduce combiner.
type ReduceOp int

// Supported reduction operators.
const (
	OpSum ReduceOp = iota
	OpMax
	OpMin
	// OpFloatSum interprets the 64-bit values as float64 bit patterns and
	// sums them, for the numeric reductions in conjugate gradient.
	OpFloatSum
)

func combine(op ReduceOp, a, b int64) int64 {
	switch op {
	case OpMax:
		if b > a {
			return b
		}
		return a
	case OpMin:
		if b < a {
			return b
		}
		return a
	case OpFloatSum:
		s := math.Float64frombits(uint64(a)) + math.Float64frombits(uint64(b))
		return int64(math.Float64bits(s))
	default:
		return a + b
	}
}

// AllReduceFloat sums a float64 across all processors.
func (nd *Node) AllReduceFloat(p *sim.Proc, v float64) float64 {
	bits := nd.AllReduce(p, int64(math.Float64bits(v)), OpFloatSum)
	return math.Float64frombits(uint64(bits))
}

// AllReduce combines v across all processors and returns the result on
// every node, using a butterfly exchange when N is a power of two and a
// dissemination pattern otherwise (log N rounds either way).
func (nd *Node) AllReduce(p *sim.Proc, v int64, op ReduceOp) int64 {
	var out int64
	nd.comm(p, func() { out = nd.allReduce(p, v, op) })
	return out
}

func (nd *Node) allReduce(p *sim.Proc, v int64, op ReduceOp) int64 {
	n := nd.N()
	if n == 1 {
		return v
	}
	nd.redEp++
	ep := nd.redEp % 1024
	if n&(n-1) != 0 {
		return nd.allReduceCentral(p, v, op, ep)
	}
	self := nd.Self()
	acc := v
	var buf [8]byte
	for round, dist := 0, 1; dist < n; round, dist = round+1, dist*2 {
		key := ep<<8 | uint32(round)
		dst := (self + dist) % n
		binary.BigEndian.PutUint64(buf[:], uint64(acc))
		nd.t.Send(p, dst, packArg(kindReduce, key), buf[:])
		for len(nd.redVals[key]) == 0 {
			nd.t.PollWait(p, time.Millisecond)
		}
		acc = combine(op, acc, nd.redVals[key][0])
		nd.redVals[key] = nd.redVals[key][1:]
		if len(nd.redVals[key]) == 0 {
			delete(nd.redVals, key)
		}
	}
	return acc
}

// allReduceCentral is the non-power-of-two fallback: gather to node 0,
// combine, broadcast.
func (nd *Node) allReduceCentral(p *sim.Proc, v int64, op ReduceOp, ep uint32) int64 {
	n, self := nd.N(), nd.Self()
	up := ep<<8 | 0xFE
	down := ep<<8 | 0xFF
	var buf [8]byte
	if self != 0 {
		binary.BigEndian.PutUint64(buf[:], uint64(v))
		nd.t.Send(p, 0, packArg(kindReduce, up), buf[:])
		for len(nd.redVals[down]) == 0 {
			nd.t.PollWait(p, time.Millisecond)
		}
		out := nd.redVals[down][0]
		delete(nd.redVals, down)
		return out
	}
	acc := v
	for got := 0; got < n-1; {
		for len(nd.redVals[up]) == 0 {
			nd.t.PollWait(p, time.Millisecond)
		}
		for _, x := range nd.redVals[up] {
			acc = combine(op, acc, x)
			got++
		}
		delete(nd.redVals, up)
	}
	binary.BigEndian.PutUint64(buf[:], uint64(acc))
	for dst := 1; dst < n; dst++ {
		nd.t.Send(p, dst, packArg(kindReduce, down), buf[:])
	}
	return acc
}

// Run spawns fn as the thread of control on every node and runs the
// simulation to completion, returning each node's elapsed time measured
// from a start barrier to its own finish.
func Run(nodes []*Node, fn func(p *sim.Proc, nd *Node)) []time.Duration {
	times := make([]time.Duration, len(nodes))
	for i, nd := range nodes {
		i, nd := i, nd
		nd.t.Spawn(fmt.Sprintf("splitc%d", i), func(p *sim.Proc) {
			nd.Barrier(p)
			start := p.Now()
			fn(p, nd)
			times[i] = p.Now() - start
		})
	}
	nodes[0].t.Engine().Run()
	return times
}
