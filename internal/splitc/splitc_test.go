package splitc_test

import (
	"testing"
	"time"

	"unet/internal/machine"
	"unet/internal/sim"
	"unet/internal/splitc"
	"unet/internal/testbed"
	"unet/internal/uam"
)

// modelNodes builds n Split-C nodes on a CM-5 model (cheap fixture).
func modelNodes(t *testing.T, n int) []*splitc.Node {
	t.Helper()
	e := sim.New(1)
	t.Cleanup(e.Shutdown)
	m := machine.New(e, machine.CM5Params(), n)
	nodes := make([]*splitc.Node, n)
	for i := 0; i < n; i++ {
		nodes[i] = splitc.NewNode(m.Node(i))
	}
	return nodes
}

// uamNodes builds n Split-C nodes over UAM on the simulated ATM cluster.
func uamNodes(t *testing.T, n int) []*splitc.Node {
	t.Helper()
	tb := testbed.New(testbed.Config{Hosts: n})
	t.Cleanup(tb.Close)
	ams := make([]*uam.UAM, n)
	for i := 0; i < n; i++ {
		var err error
		ams[i], err = uam.New(tb.Hosts[i].NewProcess("splitc"), i, uam.Config{MaxPeers: n})
		if err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if err := uam.Connect(tb.Manager, ams[i], ams[j]); err != nil {
				t.Fatal(err)
			}
		}
	}
	nodes := make([]*splitc.Node, n)
	for i := 0; i < n; i++ {
		nodes[i] = splitc.NewNode(splitc.NewUAMTransport(ams[i], tb.Hosts[i], n))
	}
	return nodes
}

func TestBarrierSynchronizes(t *testing.T) {
	for _, n := range []int{2, 3, 8} {
		nodes := modelNodes(t, n)
		phase := make([]int, n)
		splitc.Run(nodes, func(p *sim.Proc, nd *splitc.Node) {
			if nd.Self() == 0 {
				p.Sleep(500 * time.Microsecond) // straggler
			}
			phase[nd.Self()] = 1
			nd.Barrier(p)
			for i, ph := range phase {
				if ph != 1 {
					t.Errorf("n=%d: node %d passed barrier before node %d arrived", n, nd.Self(), i)
				}
			}
		})
	}
}

func TestAllReduceSum(t *testing.T) {
	for _, n := range []int{2, 3, 4, 8} {
		nodes := modelNodes(t, n)
		want := int64(n * (n + 1) / 2)
		splitc.Run(nodes, func(p *sim.Proc, nd *splitc.Node) {
			got := nd.AllReduce(p, int64(nd.Self()+1), splitc.OpSum)
			if got != want {
				t.Errorf("n=%d node %d: sum = %d, want %d", n, nd.Self(), got, want)
			}
		})
	}
}

func TestAllReduceMaxMinFloat(t *testing.T) {
	nodes := modelNodes(t, 4)
	splitc.Run(nodes, func(p *sim.Proc, nd *splitc.Node) {
		if got := nd.AllReduce(p, int64(nd.Self()), splitc.OpMax); got != 3 {
			t.Errorf("max = %d, want 3", got)
		}
		if got := nd.AllReduce(p, int64(nd.Self()), splitc.OpMin); got != 0 {
			t.Errorf("min = %d, want 0", got)
		}
		if got := nd.AllReduceFloat(p, 0.5); got != 2.0 {
			t.Errorf("float sum = %v, want 2.0", got)
		}
	})
}

func TestRPCRoundTrip(t *testing.T) {
	nodes := modelNodes(t, 2)
	nodes[1].OnSmall(func(p *sim.Proc, src int, arg uint32, data []byte) (uint32, []byte) {
		return arg * 2, append([]byte("echo:"), data...)
	})
	splitc.Run(nodes, func(p *sim.Proc, nd *splitc.Node) {
		if nd.Self() == 0 {
			arg, data := nd.RPC(p, 1, 21, []byte("hi"))
			if arg != 42 || string(data) != "echo:hi" {
				t.Errorf("rpc = %d %q", arg, data)
			}
		} else {
			// Serve until the engine quiesces (Run returns when the
			// requester finished; this node just polls a few times).
			for i := 0; i < 50; i++ {
				nd.PollWait(p, 100*time.Microsecond)
			}
		}
	})
}

func TestUAMTransportBasics(t *testing.T) {
	nodes := uamNodes(t, 3)
	count := make([]int, 3)
	bulkLen := make([]int, 3)
	for i, nd := range nodes {
		i := i
		nd.OnSmall(func(p *sim.Proc, src int, arg uint32, data []byte) (uint32, []byte) {
			count[i]++
			return 0, nil
		})
		nd.OnBulk(func(p *sim.Proc, src int, data []byte) {
			bulkLen[i] += len(data)
		})
	}
	splitc.Run(nodes, func(p *sim.Proc, nd *splitc.Node) {
		next := (nd.Self() + 1) % 3
		nd.Send(p, next, 7, []byte("x"))
		nd.Bulk(p, next, make([]byte, 10000))
		nd.Barrier(p)
		deadline := p.Now() + 5*time.Millisecond
		for (count[nd.Self()] == 0 || bulkLen[nd.Self()] < 10000) && p.Now() < deadline {
			nd.PollWait(p, time.Millisecond)
		}
		nd.Barrier(p)
	})
	for i := 0; i < 3; i++ {
		if count[i] != 1 || bulkLen[i] != 10000 {
			t.Fatalf("node %d: count=%d bulk=%d", i, count[i], bulkLen[i])
		}
	}
}

func TestUAMTransportBarrierAndReduce(t *testing.T) {
	nodes := uamNodes(t, 4)
	splitc.Run(nodes, func(p *sim.Proc, nd *splitc.Node) {
		for round := 0; round < 3; round++ {
			got := nd.AllReduce(p, int64(nd.Self()), splitc.OpSum)
			if got != 6 {
				t.Errorf("round %d node %d: sum = %d, want 6", round, nd.Self(), got)
			}
			nd.Barrier(p)
		}
	})
}

func TestCommComputeSplitAccounted(t *testing.T) {
	nodes := modelNodes(t, 2)
	splitc.Run(nodes, func(p *sim.Proc, nd *splitc.Node) {
		nd.Compute(p, 100*time.Microsecond)
		nd.Barrier(p)
	})
	for i, nd := range nodes {
		if nd.ComputeTime() <= 0 {
			t.Errorf("node %d: compute time not accounted", i)
		}
		if nd.CommTime() <= 0 {
			t.Errorf("node %d: comm time not accounted", i)
		}
	}
}

func TestComputeScalesWithCPU(t *testing.T) {
	e := sim.New(1)
	defer e.Shutdown()
	m := machine.New(e, machine.CM5Params(), 1) // CPU 0.30
	nd := splitc.NewNode(m.Node(0))
	var elapsed time.Duration
	m.Node(0).Spawn("p", func(p *sim.Proc) {
		t0 := p.Now()
		nd.Compute(p, 300*time.Microsecond)
		elapsed = p.Now() - t0
	})
	e.Run()
	want := time.Duration(float64(300*time.Microsecond) / 0.30)
	if elapsed != want {
		t.Fatalf("elapsed = %v, want %v (scaled by CPU=0.30)", elapsed, want)
	}
}
