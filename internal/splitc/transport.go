// Package splitc implements a Split-C-style runtime (paper §6): one thread
// of control per processor interacting through a global address space
// abstraction — small remote accesses that compile down to Active Message
// request/reply exchanges, and bulk transfers that map to block stores and
// gets.
//
// The runtime is written against the Transport interface so the same seven
// application benchmarks run unmodified over (a) the U-Net ATM cluster via
// U-Net Active Messages and (b) the CM-5 and Meiko CS-2 machine models of
// internal/machine, reproducing the three-way comparison of Figure 5 with
// the machine characteristics of Table 2.
package splitc

import (
	"time"

	"unet/internal/sim"
)

// RequestHandler processes an incoming small message. For RPCs the
// returned (arg, data) pair travels back to the caller; one-way sends
// ignore the return values.
type RequestHandler func(p *sim.Proc, src int, arg uint32, data []byte) (uint32, []byte)

// BulkHandler receives a completed bulk transfer.
type BulkHandler func(p *sim.Proc, src int, data []byte)

// Transport is the communication substrate a Split-C node runs over.
// Implementations must deliver messages reliably and, between any pair of
// nodes, in order. All calls are made from the node's own simulated
// process; handlers are dispatched during Poll/PollWait (and while
// blocking inside RPC and Flush).
type Transport interface {
	// Self and Size identify the node and the machine width.
	Self() int
	Size() int
	// SetRequestHandler and SetBulkHandler install the dispatch targets;
	// the runtime owns them and multiplexes application traffic.
	SetRequestHandler(fn RequestHandler)
	SetBulkHandler(fn BulkHandler)
	// RPC sends a request and waits — polling, so handlers keep running —
	// for the matching reply.
	RPC(p *sim.Proc, dst int, arg uint32, data []byte) (uint32, []byte)
	// Send is a one-way small message.
	Send(p *sim.Proc, dst int, arg uint32, data []byte)
	// Bulk is a one-way block transfer.
	Bulk(p *sim.Proc, dst int, data []byte)
	// Poll dispatches pending arrivals without blocking; PollWait blocks
	// up to d for the first one.
	Poll(p *sim.Proc)
	PollWait(p *sim.Proc, d time.Duration)
	// Flush blocks until every message this node sent has been delivered
	// (or acknowledged, for transports that buffer for retransmission).
	Flush(p *sim.Proc)
	// CPU is the node's relative compute speed (1.0 = the paper's 60 MHz
	// SuperSPARC workstation).
	CPU() float64
	// Spawn starts the node's thread of control on its processor.
	Spawn(name string, fn func(*sim.Proc)) *sim.Proc
	// Engine exposes the simulation engine driving this transport.
	Engine() *sim.Engine
	// MaxSmall is the largest payload accepted by Send/RPC.
	MaxSmall() int
}
