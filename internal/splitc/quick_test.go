package splitc_test

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"unet/internal/machine"
	"unet/internal/sim"
	"unet/internal/splitc"
)

// Property: AllReduce computes the same result on every node, equal to the
// sequential fold, for arbitrary values, operators and machine widths.
func TestAllReduceProperty(t *testing.T) {
	prop := func(vals []int64, opSel uint8, widthSel uint8) bool {
		n := 2 + int(widthSel)%7 // 2..8 nodes (covers pow2 and not)
		if len(vals) < n {
			for len(vals) < n {
				vals = append(vals, int64(len(vals)*7-3))
			}
		}
		vals = vals[:n]
		op := []splitc.ReduceOp{splitc.OpSum, splitc.OpMax, splitc.OpMin}[int(opSel)%3]

		want := vals[0]
		for _, v := range vals[1:] {
			switch op {
			case splitc.OpMax:
				if v > want {
					want = v
				}
			case splitc.OpMin:
				if v < want {
					want = v
				}
			default:
				want += v
			}
		}

		e := sim.New(1)
		defer e.Shutdown()
		m := machine.New(e, machine.CM5Params(), n)
		nodes := make([]*splitc.Node, n)
		for i := 0; i < n; i++ {
			nodes[i] = splitc.NewNode(m.Node(i))
		}
		got := make([]int64, n)
		splitc.Run(nodes, func(p *sim.Proc, nd *splitc.Node) {
			got[nd.Self()] = nd.AllReduce(p, vals[nd.Self()], op)
		})
		for _, g := range got {
			if g != want {
				t.Logf("n=%d op=%d vals=%v: got %v want %d", n, op, vals, got, want)
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 30, Rand: rand.New(rand.NewSource(11))}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

// Repeated barriers must stay synchronized: no node may enter round k+1
// before every node has left round k.
func TestBarrierStress(t *testing.T) {
	const n, rounds = 5, 25
	e := sim.New(1)
	defer e.Shutdown()
	m := machine.New(e, machine.MeikoParams(), n)
	nodes := make([]*splitc.Node, n)
	for i := 0; i < n; i++ {
		nodes[i] = splitc.NewNode(m.Node(i))
	}
	phase := make([]int, n)
	bad := false
	splitc.Run(nodes, func(p *sim.Proc, nd *splitc.Node) {
		for r := 0; r < rounds; r++ {
			// Deterministic per-node skew before arriving.
			p.Sleep(time.Duration((nd.Self()*37+r*11)%97) * time.Microsecond)
			phase[nd.Self()] = r
			nd.Barrier(p)
			for i := 0; i < n; i++ {
				if phase[i] < r {
					bad = true
				}
			}
		}
	})
	if bad {
		t.Fatal("barrier let a node run ahead of a straggler")
	}
}

// AllReduceFloat must sum floats exactly when the values are exactly
// representable, across both butterfly (pow2) and centralized (non-pow2)
// paths.
func TestAllReduceFloatBothPaths(t *testing.T) {
	for _, n := range []int{4, 6} {
		e := sim.New(1)
		m := machine.New(e, machine.CM5Params(), n)
		nodes := make([]*splitc.Node, n)
		for i := 0; i < n; i++ {
			nodes[i] = splitc.NewNode(m.Node(i))
		}
		want := 0.0
		for i := 0; i < n; i++ {
			want += float64(i) + 0.5
		}
		splitc.Run(nodes, func(p *sim.Proc, nd *splitc.Node) {
			got := nd.AllReduceFloat(p, float64(nd.Self())+0.5)
			if got != want {
				t.Errorf("n=%d node %d: %v != %v", n, nd.Self(), got, want)
			}
		})
		e.Shutdown()
	}
}
