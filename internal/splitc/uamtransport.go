package splitc

import (
	"encoding/binary"
	"fmt"
	"time"

	"unet/internal/sim"
	"unet/internal/uam"
	"unet/internal/unet"
)

// UAM handler indices used by the Split-C transport.
const (
	hSend = 10 // one-way small message: [arg u32][data]
	hRPC  = 11 // request: [token u32][arg u32][data]
	hRPCR = 12 // reply:   [token u32][arg u32][data]
	hBulk = 13 // bulk chunk; UAM arg = total length on the first chunk
)

// UAMTransport runs Split-C over U-Net Active Messages on the simulated
// ATM cluster — the configuration the paper evaluates in §6.
type UAMTransport struct {
	am   *uam.UAM
	host *unet.Host
	cpu  float64
	size int

	onReq  RequestHandler
	onBulk BulkHandler

	nextTok uint32
	rpcs    map[uint32]*rpcResult

	bulkIn map[int]*bulkAssembly
}

type rpcResult struct {
	done bool
	arg  uint32
	data []byte
}

type bulkAssembly struct {
	remaining int
	buf       []byte
}

// UAMCPUFactor is the ATM cluster's relative processor speed: a mix of 50
// and 60 MHz SuperSPARCs (Table 2), slightly below the 60 MHz baseline and
// slightly above the Meiko's 40 MHz parts.
const UAMCPUFactor = 0.92

// NewUAMTransport wraps a UAM instance (node ids must match Split-C
// processor numbers 0..N-1 and instances must be fully connected).
func NewUAMTransport(am *uam.UAM, host *unet.Host, nnodes int) *UAMTransport {
	t := &UAMTransport{
		am:     am,
		host:   host,
		cpu:    UAMCPUFactor,
		rpcs:   make(map[uint32]*rpcResult),
		bulkIn: make(map[int]*bulkAssembly),
	}
	t.size = nnodes
	am.RegisterHandler(hSend, t.handleSend)
	am.RegisterHandler(hRPC, t.handleRPC)
	am.RegisterHandler(hRPCR, t.handleRPCR)
	am.RegisterHandler(hBulk, t.handleBulk)
	return t
}

// Self returns the node id.
func (t *UAMTransport) Self() int { return t.am.Node() }

// Size returns the machine width.
func (t *UAMTransport) Size() int { return t.size }

// SetRequestHandler installs the small-message dispatch target.
func (t *UAMTransport) SetRequestHandler(fn RequestHandler) { t.onReq = fn }

// SetBulkHandler installs the bulk dispatch target.
func (t *UAMTransport) SetBulkHandler(fn BulkHandler) { t.onBulk = fn }

// CPU reports the relative processor speed.
func (t *UAMTransport) CPU() float64 { return t.cpu }

// Engine returns the simulation engine.
func (t *UAMTransport) Engine() *sim.Engine { return t.host.Eng }

// Spawn starts a process on the node's host.
func (t *UAMTransport) Spawn(name string, fn func(*sim.Proc)) *sim.Proc {
	return t.host.Spawn(name, fn)
}

// MaxSmall bounds Send/RPC payloads (one UAM message minus framing).
func (t *UAMTransport) MaxSmall() int { return 1024 }

// Send transmits a one-way small message.
func (t *UAMTransport) Send(p *sim.Proc, dst int, arg uint32, data []byte) {
	buf := make([]byte, 4+len(data))
	binary.BigEndian.PutUint32(buf, arg)
	copy(buf[4:], data)
	if err := t.am.Request(p, dst, hSend, 0, buf); err != nil {
		panic(fmt.Sprintf("splitc: send to %d: %v", dst, err))
	}
}

func (t *UAMTransport) handleSend(u *uam.UAM, p *sim.Proc, src int, _ uint32, data []byte) {
	arg := binary.BigEndian.Uint32(data)
	if t.onReq != nil {
		t.onReq(p, src, arg, data[4:])
	}
}

// RPC performs a blocking request/reply exchange.
func (t *UAMTransport) RPC(p *sim.Proc, dst int, arg uint32, data []byte) (uint32, []byte) {
	t.nextTok++
	tok := t.nextTok
	res := &rpcResult{}
	t.rpcs[tok] = res
	buf := make([]byte, 8+len(data))
	binary.BigEndian.PutUint32(buf, tok)
	binary.BigEndian.PutUint32(buf[4:], arg)
	copy(buf[8:], data)
	if err := t.am.Request(p, dst, hRPC, 0, buf); err != nil {
		panic(fmt.Sprintf("splitc: rpc to %d: %v", dst, err))
	}
	for !res.done {
		t.am.PollWait(p, time.Millisecond)
	}
	delete(t.rpcs, tok)
	return res.arg, res.data
}

func (t *UAMTransport) handleRPC(u *uam.UAM, p *sim.Proc, src int, _ uint32, data []byte) {
	tok := binary.BigEndian.Uint32(data)
	arg := binary.BigEndian.Uint32(data[4:])
	var rarg uint32
	var rdata []byte
	if t.onReq != nil {
		rarg, rdata = t.onReq(p, src, arg, data[8:])
	}
	buf := make([]byte, 8+len(rdata))
	binary.BigEndian.PutUint32(buf, tok)
	binary.BigEndian.PutUint32(buf[4:], rarg)
	copy(buf[8:], rdata)
	if err := u.Reply(p, hRPCR, 0, buf); err != nil {
		panic(err)
	}
}

func (t *UAMTransport) handleRPCR(u *uam.UAM, p *sim.Proc, src int, _ uint32, data []byte) {
	tok := binary.BigEndian.Uint32(data)
	res, ok := t.rpcs[tok]
	if !ok {
		return
	}
	res.arg = binary.BigEndian.Uint32(data[4:])
	res.data = append([]byte(nil), data[8:]...)
	res.done = true
}

// Bulk streams a block transfer as in-order UAM requests; the first chunk
// announces the total length.
func (t *UAMTransport) Bulk(p *sim.Proc, dst int, data []byte) {
	chunkMax := 4096
	sent := 0
	first := true
	for {
		chunk := len(data) - sent
		if chunk > chunkMax {
			chunk = chunkMax
		}
		arg := uint32(0)
		if first {
			arg = uint32(len(data))
			first = false
		}
		if err := t.am.Request(p, dst, hBulk, arg, data[sent:sent+chunk]); err != nil {
			panic(fmt.Sprintf("splitc: bulk to %d: %v", dst, err))
		}
		sent += chunk
		if sent >= len(data) {
			return
		}
	}
}

func (t *UAMTransport) handleBulk(u *uam.UAM, p *sim.Proc, src int, arg uint32, data []byte) {
	as := t.bulkIn[src]
	if as == nil || as.remaining == 0 {
		as = &bulkAssembly{remaining: int(arg), buf: make([]byte, 0, arg)}
		t.bulkIn[src] = as
	}
	as.buf = append(as.buf, data...)
	as.remaining -= len(data)
	if as.remaining <= 0 {
		buf := as.buf
		as.remaining = 0
		as.buf = nil
		if t.onBulk != nil {
			t.onBulk(p, src, buf)
		}
	}
}

// Poll dispatches pending arrivals.
func (t *UAMTransport) Poll(p *sim.Proc) { t.am.Poll(p) }

// PollWait blocks up to d for arrivals.
func (t *UAMTransport) PollWait(p *sim.Proc, d time.Duration) { t.am.PollWait(p, d) }

// Flush waits for all outgoing traffic to be acknowledged.
func (t *UAMTransport) Flush(p *sim.Proc) { t.am.FlushAll(p) }
