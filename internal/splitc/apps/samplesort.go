package apps

import (
	"math/bits"
	"sort"
	"time"

	"unet/internal/sim"
	"unet/internal/splitc"
)

// SortConfig sizes the sorting benchmarks. The paper sorts 4M 32-bit
// integers with arbitrary distribution on 8 processors; the test default
// scales down.
type SortConfig struct {
	// KeysPerNode is the local key count.
	KeysPerNode int
	// Oversample is the number of samples per processor used to pick
	// splitters.
	Oversample int
	// Seed drives the deterministic key generation.
	Seed int
}

// DefaultSortConfig returns the test-scale configuration.
func DefaultSortConfig() SortConfig {
	return SortConfig{KeysPerNode: 8192, Oversample: 64, Seed: 1}
}

// PaperSortConfig returns the paper's 4M-key configuration for 8 nodes.
func PaperSortConfig() SortConfig {
	return SortConfig{KeysPerNode: 4 << 20 / 8, Oversample: 64, Seed: 1}
}

// sort message args.
const (
	argKeys     = 3 // small-message key batch (packed pairs)
	argSamples  = 4
	argSplitter = 5
)

type sortNode struct {
	nd   *splitc.Node
	cfg  SortConfig
	keys []uint32

	eod       eodTracker
	incoming  []uint32
	samples   []uint32
	splitters []uint32
}

// KeysForNode regenerates a node's deterministic input keys, letting the
// test suite verify the distributed sorts against the original data.
func KeysForNode(cfg SortConfig, node int) []uint32 {
	r := rng(cfg.Seed, node)
	keys := make([]uint32, cfg.KeysPerNode)
	for i := range keys {
		keys[i] = r.Uint32()
	}
	return keys
}

func (s *sortNode) setup() {
	s.keys = KeysForNode(s.cfg, s.nd.Self())
	s.eod = eodTracker{nd: s.nd}
	s.nd.OnSmall(func(p *sim.Proc, src int, arg uint32, data []byte) (uint32, []byte) {
		switch arg {
		case argEOD:
			s.eod.seen++
		case argKeys:
			s.incoming = append(s.incoming, bytesToU32s(data)...)
		case argSamples:
			s.samples = append(s.samples, bytesToU32s(data)...)
		case argSplitter:
			s.splitters = append(s.splitters, bytesToU32s(data)...)
		}
		return 0, nil
	})
	s.nd.OnBulk(func(p *sim.Proc, src int, data []byte) {
		s.incoming = append(s.incoming, bytesToU32s(data)...)
	})
}

// localSort sorts v, charging n·log2(n) comparison steps.
func (s *sortNode) localSort(p *sim.Proc, v []uint32) {
	sort.Slice(v, func(i, j int) bool { return v[i] < v[j] })
	n := len(v)
	if n > 1 {
		s.nd.ComputeOps(p, n*bits.Len(uint(n)), splitc.IntOpCost)
	}
}

// chooseSplitters runs the sampling phase: every node sends Oversample
// random keys to node 0, which sorts them and broadcasts N-1 splitters.
func (s *sortNode) chooseSplitters(p *sim.Proc) {
	n, self := s.nd.N(), s.nd.Self()
	r := rng(s.cfg.Seed+77, self)
	mine := make([]uint32, s.cfg.Oversample)
	for i := range mine {
		mine[i] = s.keys[r.Intn(len(s.keys))]
	}
	if self == 0 {
		s.samples = append(s.samples, mine...)
		for len(s.samples) < n*s.cfg.Oversample {
			s.nd.PollWait(p, time.Millisecond)
		}
		s.localSort(p, s.samples)
		spl := make([]uint32, n-1)
		for i := range spl {
			spl[i] = s.samples[(i+1)*len(s.samples)/n]
		}
		s.splitters = spl
		for d := 1; d < n; d++ {
			s.nd.Send(p, d, argSplitter, u32sToBytes(spl))
		}
		return
	}
	// Samples travel in small batches to stay under the small-message cap.
	for i := 0; i < len(mine); i += 4 {
		hi := min(i+4, len(mine))
		s.nd.Send(p, 0, argSamples, u32sToBytes(mine[i:hi]))
	}
	for len(s.splitters) < n-1 {
		s.nd.PollWait(p, time.Millisecond)
	}
}

// destOf returns the destination processor of key k under the splitters.
func (s *sortNode) destOf(k uint32) int {
	lo, hi := 0, len(s.splitters)
	for lo < hi {
		mid := (lo + hi) / 2
		if k < s.splitters[mid] {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// permuteSmall sends every key to its destination packed two values per
// message — the small-message-optimized version of §6.
func (s *sortNode) permuteSmall(p *sim.Proc) {
	self := s.nd.Self()
	pending := map[int][]uint32{}
	charge := 0
	for _, k := range s.keys {
		d := s.destOf(k)
		charge++
		if d == self {
			s.incoming = append(s.incoming, k)
			continue
		}
		pending[d] = append(pending[d], k)
		if len(pending[d]) == 2 {
			s.nd.Send(p, d, argKeys, u32sToBytes(pending[d]))
			pending[d] = pending[d][:0]
		}
	}
	for d, v := range pending {
		if len(v) > 0 {
			s.nd.Send(p, d, argKeys, u32sToBytes(v))
		}
	}
	s.nd.ComputeOps(p, charge*5, splitc.IntOpCost) // splitter search per key
	s.eod.sendAll(p)
	s.eod.wait(p)
}

// permuteBulk pre-buckets the local keys and sends exactly one bulk
// message per destination — the bulk-transfer-optimized version of §6.
func (s *sortNode) permuteBulk(p *sim.Proc) {
	self := s.nd.Self()
	buckets := make([][]uint32, s.nd.N())
	for _, k := range s.keys {
		d := s.destOf(k)
		buckets[d] = append(buckets[d], k)
	}
	s.nd.ComputeOps(p, len(s.keys)*5, splitc.IntOpCost)
	s.incoming = append(s.incoming, buckets[self]...)
	for d := 0; d < s.nd.N(); d++ {
		if d != self {
			s.nd.Bulk(p, d, u32sToBytes(buckets[d]))
		}
	}
	s.eod.sendAll(p)
	s.eod.wait(p)
}

func (s *sortNode) runSample(p *sim.Proc, bulk bool) {
	s.chooseSplitters(p)
	s.nd.Barrier(p)
	if bulk {
		s.permuteBulk(p)
	} else {
		s.permuteSmall(p)
	}
	s.localSort(p, s.incoming)
	s.nd.Barrier(p)
}

// RunSampleSort executes the sample sort; bulk selects the bulk-transfer
// variant. It returns the timing result and each node's sorted partition
// for verification.
func RunSampleSort(nodes []*splitc.Node, cfg SortConfig, bulk bool) (Result, [][]uint32) {
	ss := make([]*sortNode, len(nodes))
	for i, nd := range nodes {
		ss[i] = &sortNode{nd: nd, cfg: cfg}
		ss[i].setup()
	}
	times := splitc.Run(nodes, func(p *sim.Proc, nd *splitc.Node) {
		ss[nd.Self()].runSample(p, bulk)
	})
	out := make([][]uint32, len(nodes))
	for i, s := range ss {
		out[i] = s.incoming
	}
	return collect(nodes, times), out
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
