package apps

import (
	"fmt"
	"time"

	"unet/internal/sim"
	"unet/internal/splitc"
)

// MMConfig sizes the blocked matrix multiply. The paper runs 4×4 blocks of
// 128×128 doubles on 8 processors; the test default scales the block size
// down.
type MMConfig struct {
	// Grid is the matrix blocking factor g: matrices are g×g blocks.
	Grid int
	// Block is the block edge b: each block is b×b float64s.
	Block int
}

// DefaultMMConfig returns the test-scale configuration.
func DefaultMMConfig() MMConfig { return MMConfig{Grid: 4, Block: 32} }

// PaperMMConfig returns the paper's full-scale configuration (§6).
func PaperMMConfig() MMConfig { return MMConfig{Grid: 4, Block: 128} }

// mm message args: request for a block of A or B.
const (
	argFetchA = 1
	argFetchB = 2
)

type mmNode struct {
	nd  *splitc.Node
	cfg MMConfig
	// Owned blocks of A, B and C, keyed by block index i*g+j.
	a, b, c map[int][]float64
	// bulkQ holds block payloads by source, matched FIFO to fetches.
	bulkQ map[int][][]float64
}

// owner distributes block (i,j) round-robin over processors.
func (m *mmNode) owner(i, j int) int { return (i*m.cfg.Grid + j) % m.nd.N() }

// genBlock fills block (i,j) of matrix id deterministically, so every node
// agrees on the data and the test can recompute the reference product.
func genBlock(id, i, j, b int) []float64 {
	out := make([]float64, b*b)
	for r := 0; r < b; r++ {
		for c := 0; c < b; c++ {
			out[r*b+c] = float64((id*31+i*17+j*13+r*7+c)%23) / 23.0
		}
	}
	return out
}

func (m *mmNode) setup() {
	g, b := m.cfg.Grid, m.cfg.Block
	m.a = map[int][]float64{}
	m.b = map[int][]float64{}
	m.c = map[int][]float64{}
	m.bulkQ = map[int][][]float64{}
	for i := 0; i < g; i++ {
		for j := 0; j < g; j++ {
			if m.owner(i, j) == m.nd.Self() {
				m.a[i*g+j] = genBlock(1, i, j, b)
				m.b[i*g+j] = genBlock(2, i, j, b)
				m.c[i*g+j] = make([]float64, b*b)
			}
		}
	}
	m.nd.OnSmall(func(p *sim.Proc, src int, arg uint32, data []byte) (uint32, []byte) {
		switch arg {
		case argEOD:
			// unused in mm
		case argFetchA, argFetchB:
			idx := int(uint32(data[0])<<8 | uint32(data[1]))
			var blk []float64
			if arg == argFetchA {
				blk = m.a[idx]
			} else {
				blk = m.b[idx]
			}
			if blk == nil {
				panic(fmt.Sprintf("mm: node %d asked for block %d it does not own", m.nd.Self(), idx))
			}
			m.nd.Bulk(p, src, f64sToBytes(blk))
		}
		return 0, nil
	})
	m.nd.OnBulk(func(p *sim.Proc, src int, data []byte) {
		m.bulkQ[src] = append(m.bulkQ[src], bytesToF64s(data))
	})
}

// request issues an asynchronous block fetch (the prefetch of §6's main
// loop) and returns a wait function.
func (m *mmNode) request(p *sim.Proc, mat uint32, i, j int) func(*sim.Proc) []float64 {
	g := m.cfg.Grid
	idx := i*g + j
	own := m.owner(i, j)
	if own == m.nd.Self() {
		var blk []float64
		if mat == argFetchA {
			blk = m.a[idx]
		} else {
			blk = m.b[idx]
		}
		return func(*sim.Proc) []float64 { return blk }
	}
	m.nd.Send(p, own, mat, []byte{byte(idx >> 8), byte(idx)})
	return func(p *sim.Proc) []float64 {
		for len(m.bulkQ[own]) == 0 {
			m.nd.PollWait(p, time.Millisecond)
		}
		blk := m.bulkQ[own][0]
		m.bulkQ[own] = m.bulkQ[own][1:]
		return blk
	}
}

// dgemm computes c += a×b for b×b blocks, charging one fused multiply-add
// per inner-loop step.
func (m *mmNode) dgemm(p *sim.Proc, cblk, ablk, bblk []float64) {
	b := m.cfg.Block
	for i := 0; i < b; i++ {
		for k := 0; k < b; k++ {
			aik := ablk[i*b+k]
			row := bblk[k*b:]
			crow := cblk[i*b:]
			for j := 0; j < b; j++ {
				crow[j] += aik * row[j]
			}
		}
	}
	m.nd.ComputeOps(p, b*b*b, splitc.FlopCost)
}

func (m *mmNode) run(p *sim.Proc) {
	g := m.cfg.Grid
	for i := 0; i < g; i++ {
		for j := 0; j < g; j++ {
			if m.owner(i, j) != m.nd.Self() {
				continue
			}
			cblk := m.c[i*g+j]
			// Prefetch the k=0 operands, then overlap: while multiplying
			// block k, the k+1 operands are already in flight (§6).
			waitA := m.request(p, argFetchA, i, 0)
			waitB := m.request(p, argFetchB, 0, j)
			for k := 0; k < g; k++ {
				ablk := waitA(p)
				bblk := waitB(p)
				if k+1 < g {
					waitA = m.request(p, argFetchA, i, k+1)
					waitB = m.request(p, argFetchB, k+1, j)
				}
				m.dgemm(p, cblk, ablk, bblk)
				m.nd.Poll(p) // serve other processors' block requests
			}
		}
	}
	// Two rounds: make sure everyone finished fetching before the threads
	// stop serving requests.
	m.nd.Flush(p)
	m.nd.Barrier(p)
}

// RunMM executes the blocked matrix multiply on the given nodes and
// returns the timing result plus the per-node C blocks for verification.
func RunMM(nodes []*splitc.Node, cfg MMConfig) (Result, []map[int][]float64) {
	ms := make([]*mmNode, len(nodes))
	for i, nd := range nodes {
		ms[i] = &mmNode{nd: nd, cfg: cfg}
		ms[i].setup()
	}
	times := splitc.Run(nodes, func(p *sim.Proc, nd *splitc.Node) {
		ms[nd.Self()].run(p)
	})
	cs := make([]map[int][]float64, len(nodes))
	for i, m := range ms {
		cs[i] = m.c
	}
	return collect(nodes, times), cs
}

// MMReference computes the reference product serially for verification.
func MMReference(cfg MMConfig) map[int][]float64 {
	g, b := cfg.Grid, cfg.Block
	out := map[int][]float64{}
	for i := 0; i < g; i++ {
		for j := 0; j < g; j++ {
			c := make([]float64, b*b)
			for k := 0; k < g; k++ {
				a := genBlock(1, i, k, b)
				bb := genBlock(2, k, j, b)
				for r := 0; r < b; r++ {
					for kk := 0; kk < b; kk++ {
						ark := a[r*b+kk]
						for cc := 0; cc < b; cc++ {
							c[r*b+cc] += ark * bb[kk*b+cc]
						}
					}
				}
			}
			out[i*g+j] = c
		}
	}
	return out
}
