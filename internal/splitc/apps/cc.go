package apps

import (
	"encoding/binary"

	"unet/internal/sim"
	"unet/internal/splitc"
)

// Connected components (paper §6): label propagation over a distributed
// undirected graph. Vertices are block-distributed; each iteration every
// processor pushes its vertices' current labels across cut edges with
// small messages, receivers fold the minimum, and an all-reduce detects
// quiescence. This is the small-message-bound benchmark of Figure 5 —
// the CM-5's low per-message overhead wins here.

// CCConfig sizes the benchmark.
type CCConfig struct {
	// VerticesPerNode is the local vertex count.
	VerticesPerNode int
	// Degree is the average number of edges per vertex.
	Degree int
	// Seed drives the deterministic graph generation.
	Seed int
}

// DefaultCCConfig returns the test-scale configuration.
func DefaultCCConfig() CCConfig {
	return CCConfig{VerticesPerNode: 1024, Degree: 4, Seed: 3}
}

// PaperCCConfig returns a full-scale configuration comparable to §6.
func PaperCCConfig() CCConfig {
	return CCConfig{VerticesPerNode: 64 << 10, Degree: 4, Seed: 3}
}

const argLabel = 9 // [vertex u32][label u32]

type ccNode struct {
	nd  *splitc.Node
	cfg CCConfig

	labels []uint32 // local vertex labels, indexed by local id
	// edges: local vertex -> neighbor global ids (including remote).
	edges   [][]uint32
	eod     eodTracker
	changed bool
}

// ccEdges generates the global edge list deterministically: every node can
// regenerate any vertex's adjacency. Edges connect random vertex pairs.
func ccEdges(cfg CCConfig, nnodes int) [][2]uint32 {
	total := cfg.VerticesPerNode * nnodes
	g := rng(cfg.Seed, 999)
	edges := make([][2]uint32, 0, total*cfg.Degree/2)
	for i := 0; i < total*cfg.Degree/2; i++ {
		a := uint32(g.Intn(total))
		b := uint32(g.Intn(total))
		if a != b {
			edges = append(edges, [2]uint32{a, b})
		}
	}
	return edges
}

func (c *ccNode) setup() {
	n := c.nd.N()
	local := c.cfg.VerticesPerNode
	self := c.nd.Self()
	c.labels = make([]uint32, local)
	c.edges = make([][]uint32, local)
	for i := range c.labels {
		c.labels[i] = uint32(self*local + i) // label = own global id
	}
	for _, e := range ccEdges(c.cfg, n) {
		a, b := e[0], e[1]
		if int(a)/local == self {
			c.edges[int(a)%local] = append(c.edges[int(a)%local], b)
		}
		if int(b)/local == self {
			c.edges[int(b)%local] = append(c.edges[int(b)%local], a)
		}
	}
	c.eod = eodTracker{nd: c.nd}
	c.nd.OnSmall(func(p *sim.Proc, src int, arg uint32, data []byte) (uint32, []byte) {
		switch arg {
		case argEOD:
			c.eod.seen++
		case argLabel:
			v := binary.BigEndian.Uint32(data)
			lbl := binary.BigEndian.Uint32(data[4:])
			lv := int(v) % local
			if lbl < c.labels[lv] {
				c.labels[lv] = lbl
				c.changed = true
			}
		}
		return 0, nil
	})
}

func (c *ccNode) run(p *sim.Proc) {
	local := c.cfg.VerticesPerNode
	self := c.nd.Self()
	for {
		c.changed = false
		var buf [8]byte
		sends := 0
		for lv, nbrs := range c.edges {
			lbl := c.labels[lv]
			for _, nb := range nbrs {
				owner := int(nb) / local
				if owner == self {
					ln := int(nb) % local
					if lbl < c.labels[ln] {
						c.labels[ln] = lbl
						c.changed = true
					}
					continue
				}
				binary.BigEndian.PutUint32(buf[:], nb)
				binary.BigEndian.PutUint32(buf[4:], lbl)
				c.nd.Send(p, owner, argLabel, buf[:])
				sends++
			}
		}
		c.nd.ComputeOps(p, local*c.cfg.Degree, splitc.IntOpCost)
		c.eod.sendAll(p)
		c.eod.wait(p)
		anyChanged := c.nd.AllReduce(p, boolToInt(c.changed), splitc.OpMax)
		c.nd.Barrier(p)
		if anyChanged == 0 {
			return
		}
	}
}

func boolToInt(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

// RunCC executes connected components, returning the timing result and
// each node's final labels for verification.
func RunCC(nodes []*splitc.Node, cfg CCConfig) (Result, [][]uint32) {
	cs := make([]*ccNode, len(nodes))
	for i, nd := range nodes {
		cs[i] = &ccNode{nd: nd, cfg: cfg}
		cs[i].setup()
	}
	times := splitc.Run(nodes, func(p *sim.Proc, nd *splitc.Node) {
		cs[nd.Self()].run(p)
	})
	out := make([][]uint32, len(nodes))
	for i, c := range cs {
		out[i] = c.labels
	}
	return collect(nodes, times), out
}

// CCReference computes components serially with union-find.
func CCReference(cfg CCConfig, nnodes int) []uint32 {
	total := cfg.VerticesPerNode * nnodes
	parent := make([]uint32, total)
	for i := range parent {
		parent[i] = uint32(i)
	}
	var find func(uint32) uint32
	find = func(x uint32) uint32 {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	for _, e := range ccEdges(cfg, nnodes) {
		ra, rb := find(e[0]), find(e[1])
		if ra != rb {
			if ra < rb {
				parent[rb] = ra
			} else {
				parent[ra] = rb
			}
		}
	}
	out := make([]uint32, total)
	for i := range out {
		out[i] = find(uint32(i))
	}
	// Normalize: the label-propagation answer is the minimum vertex id in
	// the component, which union-by-min find yields directly.
	return out
}
