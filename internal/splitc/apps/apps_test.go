package apps_test

import (
	"math"
	"sort"
	"testing"

	"unet/internal/machine"
	"unet/internal/sim"
	"unet/internal/splitc"
	"unet/internal/splitc/apps"
	"unet/internal/testbed"
	"unet/internal/uam"
)

func modelNodes(t *testing.T, n int, pm machine.Params) []*splitc.Node {
	t.Helper()
	e := sim.New(1)
	t.Cleanup(e.Shutdown)
	m := machine.New(e, pm, n)
	nodes := make([]*splitc.Node, n)
	for i := 0; i < n; i++ {
		nodes[i] = splitc.NewNode(m.Node(i))
	}
	return nodes
}

func uamNodes(t *testing.T, n int) []*splitc.Node {
	t.Helper()
	tb := testbed.New(testbed.Config{Hosts: n})
	t.Cleanup(tb.Close)
	ams := make([]*uam.UAM, n)
	for i := 0; i < n; i++ {
		var err error
		ams[i], err = uam.New(tb.Hosts[i].NewProcess("splitc"), i, uam.Config{MaxPeers: n})
		if err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if err := uam.Connect(tb.Manager, ams[i], ams[j]); err != nil {
				t.Fatal(err)
			}
		}
	}
	nodes := make([]*splitc.Node, n)
	for i := 0; i < n; i++ {
		nodes[i] = splitc.NewNode(splitc.NewUAMTransport(ams[i], tb.Hosts[i], n))
	}
	return nodes
}

func checkMM(t *testing.T, cfg apps.MMConfig, nnodes int, cs []map[int][]float64) {
	t.Helper()
	ref := apps.MMReference(cfg)
	g := cfg.Grid
	for i := 0; i < g; i++ {
		for j := 0; j < g; j++ {
			owner := (i*g + j) % nnodes
			got := cs[owner][i*g+j]
			want := ref[i*g+j]
			if got == nil {
				t.Fatalf("block (%d,%d) missing on owner %d", i, j, owner)
			}
			for k := range want {
				if math.Abs(got[k]-want[k]) > 1e-9 {
					t.Fatalf("block (%d,%d)[%d] = %g, want %g", i, j, k, got[k], want[k])
				}
			}
		}
	}
}

func TestMatrixMultiplyCorrect(t *testing.T) {
	cfg := apps.MMConfig{Grid: 4, Block: 16}
	nodes := modelNodes(t, 4, machine.CM5Params())
	res, cs := apps.RunMM(nodes, cfg)
	if res.Time <= 0 {
		t.Fatal("no time elapsed")
	}
	checkMM(t, cfg, 4, cs)
}

func TestMatrixMultiplyOnUNetCluster(t *testing.T) {
	cfg := apps.MMConfig{Grid: 2, Block: 16}
	nodes := uamNodes(t, 2)
	res, cs := apps.RunMM(nodes, cfg)
	if res.Time <= 0 {
		t.Fatal("no time elapsed")
	}
	checkMM(t, cfg, 2, cs)
}

// checkSorted verifies a distributed sort result: concatenated partitions
// are globally sorted and form a permutation of the input keys.
func checkSorted(t *testing.T, parts [][]uint32, inputs []uint32, partitioned bool) {
	t.Helper()
	var all []uint32
	prevMax := uint32(0)
	for i, part := range parts {
		for j := 1; j < len(part); j++ {
			if part[j] < part[j-1] {
				t.Fatalf("partition %d not sorted at %d", i, j)
			}
		}
		if partitioned && len(part) > 0 {
			if part[0] < prevMax {
				t.Fatalf("partition %d overlaps previous (%d < %d)", i, part[0], prevMax)
			}
			prevMax = part[len(part)-1]
		}
		all = append(all, part...)
	}
	if len(all) != len(inputs) {
		t.Fatalf("key count changed: %d -> %d", len(inputs), len(all))
	}
	sortedIn := append([]uint32(nil), inputs...)
	sort.Slice(sortedIn, func(i, j int) bool { return sortedIn[i] < sortedIn[j] })
	if !partitioned {
		sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	}
	for i := range all {
		if all[i] != sortedIn[i] {
			t.Fatalf("keys differ at %d: %d vs %d", i, all[i], sortedIn[i])
		}
	}
}

// inputKeys regenerates the deterministic inputs the sort nodes created.
func inputKeys(t *testing.T, cfg apps.SortConfig, n int) []uint32 {
	t.Helper()
	var all []uint32
	for node := 0; node < n; node++ {
		r := apps.KeysForNode(cfg, node)
		all = append(all, r...)
	}
	return all
}

func TestSampleSortSmall(t *testing.T) {
	cfg := apps.SortConfig{KeysPerNode: 1000, Oversample: 32, Seed: 2}
	nodes := modelNodes(t, 4, machine.CM5Params())
	res, parts := apps.RunSampleSort(nodes, cfg, false)
	if res.Time <= 0 {
		t.Fatal("no time elapsed")
	}
	checkSorted(t, parts, inputKeys(t, cfg, 4), true)
}

func TestSampleSortBulk(t *testing.T) {
	cfg := apps.SortConfig{KeysPerNode: 1000, Oversample: 32, Seed: 2}
	nodes := modelNodes(t, 4, machine.MeikoParams())
	res, parts := apps.RunSampleSort(nodes, cfg, true)
	if res.Time <= 0 {
		t.Fatal("no time elapsed")
	}
	checkSorted(t, parts, inputKeys(t, cfg, 4), true)
}

func TestSampleSortBulkOnUNetCluster(t *testing.T) {
	cfg := apps.SortConfig{KeysPerNode: 600, Oversample: 16, Seed: 5}
	nodes := uamNodes(t, 3)
	_, parts := apps.RunSampleSort(nodes, cfg, true)
	checkSorted(t, parts, inputKeys(t, cfg, 3), true)
}

func TestRadixSortSmall(t *testing.T) {
	cfg := apps.SortConfig{KeysPerNode: 512, Seed: 4}
	nodes := modelNodes(t, 4, machine.CM5Params())
	res, parts := apps.RunRadixSort(nodes, cfg, false)
	if res.Time <= 0 {
		t.Fatal("no time elapsed")
	}
	checkSorted(t, parts, inputKeys(t, cfg, 4), true)
}

func TestRadixSortBulk(t *testing.T) {
	cfg := apps.SortConfig{KeysPerNode: 512, Seed: 4}
	nodes := modelNodes(t, 4, machine.CM5Params())
	res, parts := apps.RunRadixSort(nodes, cfg, true)
	if res.Time <= 0 {
		t.Fatal("no time elapsed")
	}
	checkSorted(t, parts, inputKeys(t, cfg, 4), true)
}

func TestConnectedComponentsCorrect(t *testing.T) {
	cfg := apps.CCConfig{VerticesPerNode: 256, Degree: 3, Seed: 6}
	nodes := modelNodes(t, 4, machine.CM5Params())
	res, labels := apps.RunCC(nodes, cfg)
	if res.Time <= 0 {
		t.Fatal("no time elapsed")
	}
	ref := apps.CCReference(cfg, 4)
	for node, part := range labels {
		for lv, lbl := range part {
			gid := node*cfg.VerticesPerNode + lv
			if lbl != ref[gid] {
				t.Fatalf("vertex %d label = %d, want %d", gid, lbl, ref[gid])
			}
		}
	}
}

func TestConjugateGradientConverges(t *testing.T) {
	cfg := apps.CGConfig{Grid: 16, Iters: 80}
	nodes := modelNodes(t, 4, machine.MeikoParams())
	res, residual := apps.RunCG(nodes, cfg)
	if res.Time <= 0 {
		t.Fatal("no time elapsed")
	}
	// CG on the SPD Laplacian must reduce the residual dramatically.
	if residual > 1e-6 {
		t.Fatalf("residual = %g after %d iters, want < 1e-6", residual, cfg.Iters)
	}
}

func TestCGSameResidualOnAllMachines(t *testing.T) {
	cfg := apps.CGConfig{Grid: 16, Iters: 20}
	var first float64
	for i, pm := range []machine.Params{machine.CM5Params(), machine.MeikoParams()} {
		nodes := modelNodes(t, 2, pm)
		_, res := apps.RunCG(nodes, cfg)
		if i == 0 {
			first = res
		} else if res != first {
			t.Fatalf("residual differs between machines: %g vs %g", res, first)
		}
	}
}

// The Figure 5 shape: the CM-5 (slow CPU, fast small messages) must beat
// the Meiko on the small-message sample sort permutation phase relative to
// its bulk performance. Assert the directional relationship the paper
// reports: bulk variants help the Meiko more than the CM-5.
func TestBulkVariantHelpsMeikoMoreThanCM5(t *testing.T) {
	cfg := apps.SortConfig{KeysPerNode: 2000, Oversample: 32, Seed: 7}
	speedup := func(pm machine.Params) float64 {
		small := modelNodes(t, 4, pm)
		rs, _ := apps.RunSampleSort(small, cfg, false)
		bulk := modelNodes(t, 4, pm)
		rb, _ := apps.RunSampleSort(bulk, cfg, true)
		return float64(rs.Time) / float64(rb.Time)
	}
	cm5 := speedup(machine.CM5Params())
	meiko := speedup(machine.MeikoParams())
	if meiko <= cm5 {
		t.Fatalf("bulk speedup: Meiko %.2f ≤ CM-5 %.2f — Figure 5 relationship violated", meiko, cm5)
	}
}
