package apps

import (
	"encoding/binary"
	"time"

	"unet/internal/sim"
	"unet/internal/splitc"
)

// Radix sort (paper §6, small-message and bulk-transfer variants): 32-bit
// keys sorted in four passes of one 8-bit digit each. Every pass computes
// a global histogram (gathered on node 0 and scattered back as per-node
// rank bases), then routes each key to the exact global position its rank
// dictates; exact placement makes the distributed sort stable without any
// cross-processor ordering assumptions.

const radixBits = 8
const radixBuckets = 1 << radixBits

// radix message args.
const (
	argRadixPair = 6 // (position, key) routed small message
)

// bulk payload tags (first uint32 of every radix bulk transfer).
const (
	bulkHist  = 1 // [tag][node id][256 counts]
	bulkRanks = 2 // [tag][256 rank bases]
	bulkPairs = 3 // [tag][pos, key]...
)

type radixNode struct {
	nd   *splitc.Node
	cfg  SortConfig
	keys []uint32 // current pass input (local slice of the global array)
	next []uint32 // next pass output
	base int      // global index of next[0]

	eod      eodTracker
	histIn   [][]uint32
	rankBase []uint32
}

func (r *radixNode) setup() {
	r.keys = KeysForNode(r.cfg, r.nd.Self())
	r.base = r.nd.Self() * r.cfg.KeysPerNode
	r.next = make([]uint32, r.cfg.KeysPerNode)
	r.eod = eodTracker{nd: r.nd}
	r.nd.OnSmall(func(p *sim.Proc, src int, arg uint32, data []byte) (uint32, []byte) {
		switch arg {
		case argEOD:
			r.eod.seen++
		case argRadixPair:
			pos := binary.BigEndian.Uint32(data)
			key := binary.BigEndian.Uint32(data[4:])
			r.place(pos, key)
		}
		return 0, nil
	})
	r.nd.OnBulk(func(p *sim.Proc, src int, data []byte) {
		words := bytesToU32s(data)
		switch words[0] {
		case bulkHist:
			r.histIn = append(r.histIn, words[1:])
		case bulkRanks:
			r.rankBase = words[1:]
		case bulkPairs:
			pairs := words[1:]
			for i := 0; i+1 < len(pairs); i += 2 {
				r.place(pairs[i], pairs[i+1])
			}
		}
	})
}

func (r *radixNode) place(pos, key uint32) {
	r.next[int(pos)-r.base] = key
}

func (r *radixNode) runPass(p *sim.Proc, shift uint, bulk bool) {
	n, self := r.nd.N(), r.nd.Self()
	local := r.cfg.KeysPerNode
	counts := make([]uint32, radixBuckets)
	for _, k := range r.keys {
		counts[(k>>shift)&(radixBuckets-1)]++
	}
	r.nd.ComputeOps(p, local, splitc.IntOpCost)

	rank := r.gatherRanks(p, counts)

	// Route each key to its exact global position.
	running := make([]uint32, radixBuckets)
	if bulk {
		out := make([][]uint32, n)
		for _, k := range r.keys {
			b := (k >> shift) & (radixBuckets - 1)
			pos := rank[b] + running[b]
			running[b]++
			dst := int(pos) / local
			out[dst] = append(out[dst], pos, k)
		}
		r.nd.ComputeOps(p, local*4, splitc.IntOpCost)
		for d := 0; d < n; d++ {
			if len(out[d]) == 0 {
				continue
			}
			if d == self {
				for i := 0; i+1 < len(out[d]); i += 2 {
					r.place(out[d][i], out[d][i+1])
				}
				continue
			}
			r.nd.Bulk(p, d, u32sToBytes(append([]uint32{bulkPairs}, out[d]...)))
		}
	} else {
		var buf [8]byte
		for _, k := range r.keys {
			b := (k >> shift) & (radixBuckets - 1)
			pos := rank[b] + running[b]
			running[b]++
			dst := int(pos) / local
			if dst == self {
				r.place(pos, k)
				continue
			}
			binary.BigEndian.PutUint32(buf[:], pos)
			binary.BigEndian.PutUint32(buf[4:], k)
			r.nd.Send(p, dst, argRadixPair, buf[:])
		}
		r.nd.ComputeOps(p, local*4, splitc.IntOpCost)
	}
	r.eod.sendAll(p)
	r.eod.wait(p)
	r.keys, r.next = r.next, r.keys
	r.nd.Barrier(p)
}

// gatherRanks computes each node's per-bucket starting rank: histograms
// are tagged with the sender id, gathered on node 0, prefix-summed in
// bucket-major order, and scattered back.
func (r *radixNode) gatherRanks(p *sim.Proc, counts []uint32) []uint32 {
	n, self := r.nd.N(), r.nd.Self()
	r.rankBase = nil
	tagged := append([]uint32{bulkHist, uint32(self)}, counts...)
	if self != 0 {
		r.nd.Bulk(p, 0, u32sToBytes(tagged))
		for r.rankBase == nil {
			r.nd.PollWait(p, time.Millisecond)
		}
		out := r.rankBase
		r.rankBase = nil
		return out
	}
	r.histIn = append(r.histIn, tagged[1:])
	for len(r.histIn) < n {
		r.nd.PollWait(p, time.Millisecond)
	}
	hists := make([][]uint32, n)
	for _, h := range r.histIn {
		hists[h[0]] = h[1:]
	}
	r.histIn = nil
	// rank[node][bucket] = total of all smaller buckets + same-bucket
	// counts of smaller node ids.
	bucketTotals := make([]uint32, radixBuckets)
	for _, h := range hists {
		for b, c := range h {
			bucketTotals[b] += c
		}
	}
	prefix := make([]uint32, radixBuckets)
	acc := uint32(0)
	for b := 0; b < radixBuckets; b++ {
		prefix[b] = acc
		acc += bucketTotals[b]
	}
	r.nd.ComputeOps(p, n*radixBuckets, splitc.IntOpCost)
	var mine []uint32
	for node := n - 1; node >= 0; node-- {
		ranks := make([]uint32, radixBuckets)
		for b := 0; b < radixBuckets; b++ {
			base := prefix[b]
			for prev := 0; prev < node; prev++ {
				base += hists[prev][b]
			}
			ranks[b] = base
		}
		if node == 0 {
			mine = ranks
		} else {
			r.nd.Bulk(p, node, u32sToBytes(append([]uint32{bulkRanks}, ranks...)))
		}
	}
	return mine
}

func (r *radixNode) run(p *sim.Proc, bulk bool) {
	for pass := 0; pass < 32/radixBits; pass++ {
		r.runPass(p, uint(pass*radixBits), bulk)
	}
}

// RunRadixSort executes the radix sort; bulk selects the bulk-transfer
// variant. It returns the timing result and each node's slice of the
// globally sorted array.
func RunRadixSort(nodes []*splitc.Node, cfg SortConfig, bulk bool) (Result, [][]uint32) {
	rs := make([]*radixNode, len(nodes))
	for i, nd := range nodes {
		rs[i] = &radixNode{nd: nd, cfg: cfg}
		rs[i].setup()
	}
	times := splitc.Run(nodes, func(p *sim.Proc, nd *splitc.Node) {
		rs[nd.Self()].run(p, bulk)
	})
	out := make([][]uint32, len(nodes))
	for i, r := range rs {
		out[i] = r.keys // after the final swap, keys holds the result
	}
	return collect(nodes, times), out
}
