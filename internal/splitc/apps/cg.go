package apps

import (
	"math"
	"time"

	"unet/internal/sim"
	"unet/internal/splitc"
)

// Conjugate gradient (paper §6): solves the 2D five-point Laplacian system
// A·x = b on a g×g grid, rows block-distributed. Each iteration performs
// one matrix-vector product (requiring a halo exchange of boundary rows
// with the two neighbouring processors — bulk transfers) and two global
// dot products (all-reduces), the classic mix of bulk and latency-bound
// collective communication.

// CGConfig sizes the solver.
type CGConfig struct {
	// Grid is the g×g unknown grid edge; rows are distributed in
	// contiguous blocks of g/P.
	Grid int
	// Iters bounds the iteration count.
	Iters int
}

// DefaultCGConfig returns the test-scale configuration.
func DefaultCGConfig() CGConfig { return CGConfig{Grid: 64, Iters: 30} }

// PaperCGConfig returns a full-scale configuration comparable to §6.
func PaperCGConfig() CGConfig { return CGConfig{Grid: 512, Iters: 50} }

type cgNode struct {
	nd  *splitc.Node
	cfg CGConfig

	rows0, rows int // first local row, local row count
	x, r, d, q  []float64
	haloUp      []float64 // neighbour's boundary row above
	haloDown    []float64 // neighbour's boundary row below
	gotUp       bool
	gotDown     bool

	residual float64
}

func (c *cgNode) setup() {
	g := c.cfg.Grid
	n := c.nd.N()
	per := g / n
	c.rows0 = c.nd.Self() * per
	c.rows = per
	if c.nd.Self() == n-1 {
		c.rows = g - c.rows0
	}
	sz := c.rows * g
	c.x = make([]float64, sz)
	c.r = make([]float64, sz)
	c.d = make([]float64, sz)
	c.q = make([]float64, sz)
	c.haloUp = make([]float64, g)
	c.haloDown = make([]float64, g)
	c.nd.OnBulk(func(p *sim.Proc, src int, data []byte) {
		vals := bytesToF64s(data)
		if src == c.nd.Self()-1 {
			copy(c.haloUp, vals)
			c.gotUp = true
		} else if src == c.nd.Self()+1 {
			copy(c.haloDown, vals)
			c.gotDown = true
		}
	})
	c.nd.OnSmall(func(p *sim.Proc, src int, arg uint32, data []byte) (uint32, []byte) {
		return 0, nil
	})
}

// rhs is the deterministic right-hand side.
func rhs(row, col, g int) float64 {
	return math.Sin(float64(row+1)*0.37) * math.Cos(float64(col+1)*0.59)
}

// halo exchanges boundary rows of v with the neighbour processors.
func (c *cgNode) halo(p *sim.Proc, v []float64) {
	g := c.cfg.Grid
	self, n := c.nd.Self(), c.nd.N()
	c.gotUp = self == 0
	c.gotDown = self == n-1
	if self > 0 {
		c.nd.Bulk(p, self-1, f64sToBytes(v[:g]))
	}
	if self < n-1 {
		c.nd.Bulk(p, self+1, f64sToBytes(v[(c.rows-1)*g:]))
	}
	for !c.gotUp || !c.gotDown {
		c.nd.PollWait(p, time.Millisecond)
	}
}

// matvec computes q = A·d for the five-point Laplacian.
func (c *cgNode) matvec(p *sim.Proc) {
	g := c.cfg.Grid
	c.halo(p, c.d)
	for i := 0; i < c.rows; i++ {
		for j := 0; j < g; j++ {
			v := 4 * c.d[i*g+j]
			if j > 0 {
				v -= c.d[i*g+j-1]
			}
			if j < g-1 {
				v -= c.d[i*g+j+1]
			}
			if i > 0 {
				v -= c.d[(i-1)*g+j]
			} else if c.nd.Self() > 0 {
				v -= c.haloUp[j]
			}
			if i < c.rows-1 {
				v -= c.d[(i+1)*g+j]
			} else if c.nd.Self() < c.nd.N()-1 {
				v -= c.haloDown[j]
			}
			c.q[i*g+j] = v
		}
	}
	c.nd.ComputeOps(p, c.rows*g*5, splitc.FlopCost)
}

// dot computes the global dot product of a and b.
func (c *cgNode) dot(p *sim.Proc, a, b []float64) float64 {
	s := 0.0
	for i := range a {
		s += a[i] * b[i]
	}
	c.nd.ComputeOps(p, len(a), splitc.FlopCost)
	return c.nd.AllReduceFloat(p, s)
}

func (c *cgNode) run(p *sim.Proc) {
	g := c.cfg.Grid
	for i := 0; i < c.rows; i++ {
		for j := 0; j < g; j++ {
			c.r[i*g+j] = rhs(c.rows0+i, j, g)
			c.d[i*g+j] = c.r[i*g+j]
		}
	}
	delta := c.dot(p, c.r, c.r)
	for it := 0; it < c.cfg.Iters && delta > 1e-18; it++ {
		c.matvec(p)
		dq := c.dot(p, c.d, c.q)
		alpha := delta / dq
		for i := range c.x {
			c.x[i] += alpha * c.d[i]
			c.r[i] -= alpha * c.q[i]
		}
		c.nd.ComputeOps(p, 4*len(c.x), splitc.FlopCost)
		deltaNew := c.dot(p, c.r, c.r)
		beta := deltaNew / delta
		for i := range c.d {
			c.d[i] = c.r[i] + beta*c.d[i]
		}
		c.nd.ComputeOps(p, 2*len(c.d), splitc.FlopCost)
		delta = deltaNew
		c.nd.Barrier(p)
	}
	c.residual = math.Sqrt(delta)
	c.nd.Barrier(p)
}

// RunCG executes the conjugate-gradient solver, returning the timing
// result and the final global residual norm.
func RunCG(nodes []*splitc.Node, cfg CGConfig) (Result, float64) {
	cs := make([]*cgNode, len(nodes))
	for i, nd := range nodes {
		cs[i] = &cgNode{nd: nd, cfg: cfg}
		cs[i].setup()
	}
	times := splitc.Run(nodes, func(p *sim.Proc, nd *splitc.Node) {
		cs[nd.Self()].run(p)
	})
	return collect(nodes, times), cs[0].residual
}
