// Package apps contains the seven Split-C application benchmarks of paper
// §6: a blocked matrix multiply, sample sort optimized for small messages,
// the same sort optimized for bulk transfers, radix sorts in the same two
// variants, a connected-components algorithm, and a conjugate-gradient
// solver. Each runs unmodified on any splitc.Transport — the U-Net ATM
// cluster, the CM-5 model, or the Meiko CS-2 model — which is exactly how
// Figure 5 compares the machines.
//
// The programs do the real computation (results are verified by the test
// suite) while charging the simulation clock for compute phases via
// Node.Compute, so that the reported execution times reflect each
// machine's CPU speed and network characteristics rather than Go's.
package apps

import (
	"encoding/binary"
	"math"
	"math/rand"
	"time"

	"unet/internal/sim"
	"unet/internal/splitc"
)

// Result reports one benchmark run.
type Result struct {
	// Time is the slowest processor's elapsed time (the benchmark time).
	Time time.Duration
	// PerNode, Comm and Compute break the run down per processor.
	PerNode []time.Duration
	Comm    []time.Duration
	Compute []time.Duration
}

// collect assembles a Result from splitc.Run output.
func collect(nodes []*splitc.Node, times []time.Duration) Result {
	r := Result{PerNode: times}
	for _, t := range times {
		if t > r.Time {
			r.Time = t
		}
	}
	for _, nd := range nodes {
		r.Comm = append(r.Comm, nd.CommTime())
		r.Compute = append(r.Compute, nd.ComputeTime())
	}
	return r
}

// MaxComm returns the largest per-node communication time.
func (r Result) MaxComm() time.Duration {
	var m time.Duration
	for _, c := range r.Comm {
		if c > m {
			m = c
		}
	}
	return m
}

// MaxCompute returns the largest per-node computation time.
func (r Result) MaxCompute() time.Duration {
	var m time.Duration
	for _, c := range r.Compute {
		if c > m {
			m = c
		}
	}
	return m
}

// rng returns a node-local deterministic random source.
func rng(seed, node int) *rand.Rand {
	return rand.New(rand.NewSource(int64(seed)*1000003 + int64(node)*7919))
}

// argEOD marks the per-pair end-of-data message used by the all-to-all
// phases. Pairwise FIFO ordering makes it a channel flush: once a node has
// an EOD from every peer, all data sent to it in the phase has arrived.
const argEOD = 0xEEEEEE

// eodTracker counts end-of-data markers.
type eodTracker struct {
	nd   *splitc.Node
	seen int
}

// sendAll announces end-of-data to every peer.
func (e *eodTracker) sendAll(p *sim.Proc) {
	n, self := e.nd.N(), e.nd.Self()
	for d := 0; d < n; d++ {
		if d != self {
			e.nd.Send(p, d, argEOD, nil)
		}
	}
}

// wait polls until every peer's EOD arrived, then resets for the next
// phase.
func (e *eodTracker) wait(p *sim.Proc) {
	for e.seen < e.nd.N()-1 {
		e.nd.PollWait(p, time.Millisecond)
	}
	e.seen = 0
}

// f64sToBytes and bytesToF64s serialize block data for bulk transfers.
func f64sToBytes(v []float64) []byte {
	out := make([]byte, 8*len(v))
	for i, x := range v {
		binary.BigEndian.PutUint64(out[8*i:], math.Float64bits(x))
	}
	return out
}

func bytesToF64s(b []byte) []float64 {
	out := make([]float64, len(b)/8)
	for i := range out {
		out[i] = math.Float64frombits(binary.BigEndian.Uint64(b[8*i:]))
	}
	return out
}

// u32sToBytes and bytesToU32s serialize key arrays.
func u32sToBytes(v []uint32) []byte {
	out := make([]byte, 4*len(v))
	for i, x := range v {
		binary.BigEndian.PutUint32(out[4*i:], x)
	}
	return out
}

func bytesToU32s(b []byte) []uint32 {
	out := make([]uint32, len(b)/4)
	for i := range out {
		out[i] = binary.BigEndian.Uint32(b[4*i:])
	}
	return out
}
