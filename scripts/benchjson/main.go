// Command benchjson condenses `go test -bench` output into a small JSON
// summary (BENCH_PR6.json): one entry per benchmark with the mean of every
// reported metric across -count repetitions, plus the parallelism the
// numbers were measured at — GOMAXPROCS (parsed from each benchmark's name
// suffix) and the machine's CPU count — so a single-core artifact can
// never be misread as a multi-core regression. The raw
// benchstat-compatible text sits next to it; the JSON is for dashboards
// and PR descriptions.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

type accum struct {
	runs       int
	gomaxprocs int
	sync       string
	topo       string
	hosts      int
	switches   int
	stages     int
	metrics    map[string][]float64
}

// tag extracts the value of a "key=value" sub-benchmark path segment
// ("BenchmarkX/topo=clos2/hosts=64/..."), or "" when absent.
func tag(name, key string) string {
	marker := "/" + key + "="
	i := strings.Index(name, marker)
	if i < 0 {
		return ""
	}
	v := name[i+len(marker):]
	if j := strings.IndexByte(v, '/'); j >= 0 {
		v = v[:j]
	}
	return v
}

func intTag(name, key string) int {
	n, _ := strconv.Atoi(tag(name, key))
	return n
}

func main() {
	if len(os.Args) != 3 {
		fmt.Fprintln(os.Stderr, "usage: benchjson bench.txt out.json")
		os.Exit(2)
	}
	in, err := os.Open(os.Args[1])
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer in.Close()

	bench := map[string]*accum{}
	var order []string
	sc := bufio.NewScanner(in)
	for sc.Scan() {
		f := strings.Fields(sc.Text())
		if len(f) < 4 || !strings.HasPrefix(f[0], "Benchmark") {
			continue
		}
		// The name's numeric suffix is the GOMAXPROCS the benchmark ran at
		// (go test omits it at GOMAXPROCS=1).
		name, procs := f[0], 1
		if i := strings.LastIndex(name, "-"); i > 0 {
			if n, err := strconv.Atoi(name[i+1:]); err == nil {
				name, procs = name[:i], n
			}
		}
		// Sharded cluster/serve shapes run as sub-benchmarks per sync
		// protocol (".../sync=neighbor"); entries without the tag are serial.
		syncMode := "serial"
		if s := tag(name, "sync"); s != "" {
			syncMode = s
		}
		a := bench[name]
		if a == nil {
			a = &accum{metrics: map[string][]float64{}}
			bench[name] = a
			order = append(order, name)
		}
		a.runs++
		a.gomaxprocs = procs
		a.sync = syncMode
		// Topology benchmarks tag their sub-benchmark names with the
		// compiled fabric's shape; entries without the tags are the
		// single-switch cluster.
		a.topo = tag(name, "topo")
		a.hosts = intTag(name, "hosts")
		a.switches = intTag(name, "switches")
		a.stages = intTag(name, "stages")
		// f[1] is the iteration count; then (value, unit) pairs follow.
		for i := 2; i+1 < len(f); i += 2 {
			v, err := strconv.ParseFloat(f[i], 64)
			if err != nil {
				continue
			}
			a.metrics[f[i+1]] = append(a.metrics[f[i+1]], v)
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	type entry struct {
		Name       string `json:"name"`
		Runs       int    `json:"runs"`
		GOMAXPROCS int    `json:"gomaxprocs"`
		NumCPU     int    `json:"numcpu"`
		Sync       string `json:"sync"`
		// Topology metadata, present on multi-switch fabric benchmarks:
		// the generated shape and its size (internal/topo).
		Topo     string             `json:"topo,omitempty"`
		Hosts    int                `json:"hosts,omitempty"`
		Switches int                `json:"switches,omitempty"`
		Stages   int                `json:"stages,omitempty"`
		Metrics  map[string]float64 `json:"metrics"`
	}
	var out []entry
	for _, name := range order {
		a := bench[name]
		m := map[string]float64{}
		for unit, vs := range a.metrics {
			sum := 0.0
			for _, v := range vs {
				sum += v
			}
			m[unit] = sum / float64(len(vs))
		}
		out = append(out, entry{
			Name: name, Runs: a.runs,
			GOMAXPROCS: a.gomaxprocs, NumCPU: runtime.NumCPU(),
			Sync: a.sync,
			Topo: a.topo, Hosts: a.hosts, Switches: a.switches, Stages: a.stages,
			Metrics: m,
		})
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Name < out[j].Name })

	buf, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if err := os.WriteFile(os.Args[2], append(buf, '\n'), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
