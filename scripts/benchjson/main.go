// Command benchjson condenses `go test -bench` output into a small JSON
// summary (BENCH_PR6.json): one entry per benchmark with the mean of every
// reported metric across -count repetitions, plus the parallelism the
// numbers were measured at — GOMAXPROCS (parsed from each benchmark's name
// suffix) and the machine's CPU count — so a single-core artifact can
// never be misread as a multi-core regression. The raw
// benchstat-compatible text sits next to it; the JSON is for dashboards
// and PR descriptions.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

type accum struct {
	runs       int
	gomaxprocs int
	sync       string
	metrics    map[string][]float64
}

func main() {
	if len(os.Args) != 3 {
		fmt.Fprintln(os.Stderr, "usage: benchjson bench.txt out.json")
		os.Exit(2)
	}
	in, err := os.Open(os.Args[1])
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer in.Close()

	bench := map[string]*accum{}
	var order []string
	sc := bufio.NewScanner(in)
	for sc.Scan() {
		f := strings.Fields(sc.Text())
		if len(f) < 4 || !strings.HasPrefix(f[0], "Benchmark") {
			continue
		}
		// The name's numeric suffix is the GOMAXPROCS the benchmark ran at
		// (go test omits it at GOMAXPROCS=1).
		name, procs := f[0], 1
		if i := strings.LastIndex(name, "-"); i > 0 {
			if n, err := strconv.Atoi(name[i+1:]); err == nil {
				name, procs = name[:i], n
			}
		}
		// Sharded cluster/serve shapes run as sub-benchmarks per sync
		// protocol (".../sync=neighbor"); entries without the tag are serial.
		syncMode := "serial"
		if i := strings.Index(name, "/sync="); i >= 0 {
			syncMode = name[i+len("/sync="):]
			if j := strings.IndexByte(syncMode, '/'); j >= 0 {
				syncMode = syncMode[:j]
			}
		}
		a := bench[name]
		if a == nil {
			a = &accum{metrics: map[string][]float64{}}
			bench[name] = a
			order = append(order, name)
		}
		a.runs++
		a.gomaxprocs = procs
		a.sync = syncMode
		// f[1] is the iteration count; then (value, unit) pairs follow.
		for i := 2; i+1 < len(f); i += 2 {
			v, err := strconv.ParseFloat(f[i], 64)
			if err != nil {
				continue
			}
			a.metrics[f[i+1]] = append(a.metrics[f[i+1]], v)
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	type entry struct {
		Name       string             `json:"name"`
		Runs       int                `json:"runs"`
		GOMAXPROCS int                `json:"gomaxprocs"`
		NumCPU     int                `json:"numcpu"`
		Sync       string             `json:"sync"`
		Metrics    map[string]float64 `json:"metrics"`
	}
	var out []entry
	for _, name := range order {
		a := bench[name]
		m := map[string]float64{}
		for unit, vs := range a.metrics {
			sum := 0.0
			for _, v := range vs {
				sum += v
			}
			m[unit] = sum / float64(len(vs))
		}
		out = append(out, entry{
			Name: name, Runs: a.runs,
			GOMAXPROCS: a.gomaxprocs, NumCPU: runtime.NumCPU(),
			Sync:    a.sync,
			Metrics: m,
		})
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Name < out[j].Name })

	buf, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if err := os.WriteFile(os.Args[2], append(buf, '\n'), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
