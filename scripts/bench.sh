#!/bin/sh
# bench.sh — the PR-gate performance run.
#
# 1. Tier-1: build + full test suite (the calibration gates).
# 2. Race check on the simulation kernel and the parallel sweep pool.
# 3. Microbenchmarks (engine, fabric) and the end-to-end Figure 4 sweep,
#    saved as benchstat-compatible text and summarized into BENCH_PR1.json.
#
# Usage: scripts/bench.sh [output.json]   (default BENCH_PR1.json)
set -eu
cd "$(dirname "$0")/.."

out="${1:-BENCH_PR1.json}"
txt="${out%.json}.txt"

echo "== tier-1: go build ./... && go test ./..." >&2
go build ./...
go test ./...

echo "== race: internal/sim, internal/experiments" >&2
go test -race ./internal/sim/...
GOMAXPROCS=4 go test -race -run 'Golden' ./internal/experiments/

echo "== benchmarks (benchstat-compatible: $txt)" >&2
go test -run '^$' -bench 'BenchmarkEngine_|BenchmarkLink_|BenchmarkSwitch_' \
	-benchmem -benchtime 200000x -count 3 \
	./internal/sim/ ./internal/fabric/ | tee "$txt"
go test -run '^$' -bench 'BenchmarkFig4_Bandwidth' -benchtime 3x -count 3 . | tee -a "$txt"

echo "== summarizing into $out" >&2
go run ./scripts/benchjson "$txt" "$out"
echo "wrote $out" >&2
