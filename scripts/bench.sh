#!/bin/sh
# bench.sh — the PR-gate performance run.
#
# 1. Tier-1: build + full test suite (the calibration gates).
# 2. Race check on the simulation kernel (incl. both shard sync
#    protocols), the fabric, the NIC models and the parallel sweep pool,
#    plus the sharded golden checks (byte-identical output at every shard
#    count and under both sync protocols).
# 3. Steady-state allocation gate: the data path must move messages with
#    zero allocations per round trip (DESIGN.md §10).
# 4. Fault-injection gates: the seeded loss sweep and chaos soak are
#    byte-identical at every shard count, and the reliable layers deliver
#    100% under ≤1% cell loss with bounded retransmits (DESIGN.md §11).
# 5. Scheduler + serving gates: the heap/wheel differential and
#    shard-identity checks on the open-loop serve workload, the wheel
#    edge-case suite and the scheduler steady-state allocation gate
#    (DESIGN.md §12).
# 6. Multi-switch fabric gates (DESIGN.md §15): the Clos storm goldens
#    render byte-identically serial vs shards 1/2/4/8 under both sync
#    protocols, and the 1k-endpoint island gossip removes failed
#    neighbors deterministically at every shard count.
# 7. Microbenchmarks (engine, scheduler heap-vs-wheel at 1k/100k/1M
#    pending, fabric), the zero-alloc echo/UAM round trips, the
#    end-to-end Figure 4 sweep, the goodput-under-loss recovery points,
#    the serial-vs-sharded 8-host cluster storm, the 64-host Clos storm,
#    the gossip host-count scaling sweep (256/512/1024 endpoints) and the
#    open-loop serve workload, all
#    with -benchmem, saved as benchstat-compatible text and summarized
#    into the output JSON. Every JSON entry records the GOMAXPROCS it ran
#    at, the machine's CPU count and its sync protocol ("serial" when no
#    shard group exists); the sharded storm/serve shapes run as
#    sub-benchmarks under both sync protocols (sync=neighbor,
#    sync=barrier) and carry their shard count and sync-wait share, and
#    topology shapes tag their topo kind, host/switch count and stage
#    count, so a single-core artifact can never be misread as a
#    multi-core regression. The storm runs with UNET_BENCH_OVERSUB=1 so
#    oversubscribed shapes are still recorded (they skip by default under
#    plain `go test -bench`).
#
# Usage: scripts/bench.sh [output.json]   (default BENCH_PR10.json)
set -eu
cd "$(dirname "$0")/.."

out="${1:-BENCH_PR10.json}"
txt="${out%.json}.txt"

echo "== tier-1: go build ./... && go test ./..." >&2
go build ./...
go test ./...

echo "== race: internal/sim, internal/fabric, internal/nic, internal/experiments" >&2
go test -race ./internal/sim/...
go test -race ./internal/fabric/...
go test -race ./internal/nic/...
GOMAXPROCS=4 go test -race -run 'Golden' ./internal/experiments/

echo "== sharded golden checks (byte-identical at every shard count, both sync protocols)" >&2
GOMAXPROCS=4 go test -run 'TestGoldenShardSweep|TestGoldenSyncSweep' ./internal/experiments/
go test -run 'TestSharded' ./internal/testbed/

echo "== steady-state allocation gate (0 allocs/round on the data path)" >&2
go test -run 'TestSteadyStateAllocs' ./internal/experiments/

echo "== fault-injection gates (seeded determinism + loss recovery)" >&2
GOMAXPROCS=4 go test -run 'TestGoldenFaultDeterminism|TestLossRecoveryDelivery' ./internal/experiments/
go test -run 'TestSeededLossNthCellGolden|TestDeadPeerFailsInBoundedTime' ./internal/uam/ ./internal/ip/tcp/

echo "== scheduler + serving gates (heap/wheel differential, wheel edges, knee)" >&2
go test -run 'TestWheel|TestAfterZero|TestSchedulerDifferentialFiringOrder|TestSchedulerSteadyStateAllocs' ./internal/sim/
go test -run 'TestServe' ./internal/experiments/

echo "== multi-switch fabric gates (Clos goldens + island gossip determinism)" >&2
GOMAXPROCS=4 go test -run 'TestGoldenTopoSweep|TestGossipDeterministic' ./internal/experiments/
go test -run 'Test' ./internal/topo/

echo "== benchmarks (benchstat-compatible: $txt)" >&2
go test -run '^$' -bench 'BenchmarkEngine_|BenchmarkLink_|BenchmarkSwitch_' \
	-benchmem -benchtime 200000x -count 3 \
	./internal/sim/ ./internal/fabric/ | tee "$txt"
go test -run '^$' -bench 'BenchmarkScheduler' \
	-benchmem -benchtime 2000000x -count 3 \
	./internal/sim/ | tee -a "$txt"
go test -run '^$' -bench 'BenchmarkEcho|BenchmarkUAMRoundTrip' \
	-benchmem -benchtime 2000x -count 3 \
	./internal/experiments/ | tee -a "$txt"
go test -run '^$' -bench 'BenchmarkFig4_Bandwidth' -benchmem -benchtime 3x -count 3 . | tee -a "$txt"
go test -run '^$' -bench 'BenchmarkFigLoss_Recovery' -benchmem -benchtime 3x -count 3 . | tee -a "$txt"
UNET_BENCH_OVERSUB=1 go test -run '^$' -bench 'BenchmarkCluster_Sharded' -benchmem -benchtime 3x -count 3 . | tee -a "$txt"
UNET_BENCH_OVERSUB=1 go test -run '^$' -bench 'BenchmarkClosStorm_' -benchmem -benchtime 3x -count 3 . | tee -a "$txt"
UNET_BENCH_OVERSUB=1 go test -run '^$' -bench 'BenchmarkGossip_Scale' -benchmem -benchtime 1x -count 3 . | tee -a "$txt"
UNET_BENCH_OVERSUB=1 go test -run '^$' -bench 'BenchmarkServe_' -benchmem -benchtime 3x -count 3 . | tee -a "$txt"

echo "== summarizing into $out" >&2
go run ./scripts/benchjson "$txt" "$out"
echo "wrote $out" >&2
